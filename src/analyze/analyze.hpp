#pragma once

// Post-hoc trace analysis (the "why was it slow" layer).  Consumes
// finished per-scenario traces — either in-process trace::FinishedTrace
// objects or a previously exported Chrome trace-event JSON — and derives:
//
//   * critical-path extraction per collective operation: the chain of
//     "rank finished last <- message it waited for <- sender posted it"
//     hops through the send/recv/progress dependency graph, plus an
//     exact blame partition of the critical rank's op window into
//     compute / progress / wire / late-sender / missing-progress / other
//     (the six components sum to the op's elapsed time by construction);
//   * overlap and slack accounting per rank and per NBC handle: achieved
//     communication/computation overlap ratio against the LogGP ideal
//     (perfect overlap hides min(compute, wire) entirely, so the ideal
//     ratio is 1 whenever both are non-zero) and the slack the operation
//     left on the table;
//   * an ADCL decision audit: every agreed batch score, the winner, the
//     margin over the runner-up and the decision iteration, replayed
//     from adcl.score / adcl.decision events;
//   * performance-guideline checks over the whole scenario set (G1-G7
//     below), the trace-level analogue of the self-consistent-performance
//     rules the paper's tuning results are expected to satisfy;
//   * repetition-aware statistics per scenario: median and nonparametric
//     confidence intervals over the op-instance samples, with a
//     minimum-repetition flag ("MPI Benchmarking Revisited" discipline).
//
// All analysis is pure: no simulator state is touched, so the same
// report can be produced live by a bench driver (--report) or offline by
// tools/nbctune-analyze from an exported trace file.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace nbctune::trace {
struct FinishedTrace;
}

namespace nbctune::analyze {

// ------------------------------------------------------------------- IR

/// One trace event, decoupled from the static-string lifetime rules of
/// the live tracer so it can also be populated from a parsed JSON file.
struct AEvent {
  double ts = 0.0;    ///< start, simulated seconds
  double dur = -1.0;  ///< span duration; < 0 encodes an instant
  std::int32_t track = 0;  ///< >= 0 rank; < 0 wire lane (trace::wire_track)
  std::string cat;
  std::string name;
  std::string akey;  ///< empty = absent
  std::uint64_t aval = 0;
  std::string bkey;
  std::uint64_t bval = 0;
  std::uint64_t corr = 0;  ///< causal-chain id (0 = unlinked)

  [[nodiscard]] bool is_span() const noexcept { return dur >= 0.0; }
  [[nodiscard]] double end() const noexcept {
    return is_span() ? ts + dur : ts;
  }
  /// Value of argument `key`, or `fallback` when absent.
  [[nodiscard]] std::uint64_t arg(const std::string& key,
                                  std::uint64_t fallback = 0) const noexcept {
    if (akey == key) return aval;
    if (bkey == key) return bval;
    return fallback;
  }
};

/// One scenario's events plus its per-scenario counters (counters are
/// only available on the in-process path; the Chrome export aggregates
/// them across scenarios into the separate counter dump).
struct ScenarioTrace {
  std::string label;
  std::vector<AEvent> events;
  std::map<std::string, std::uint64_t> counters;
};

/// Convert a live finished trace into the analyzer IR.
[[nodiscard]] ScenarioTrace from_finished(const trace::FinishedTrace& t);

// -------------------------------------------------------------- results

/// Exact partition of a critical rank's op window.  Components are
/// disjoint by construction (priority compute > progress > wire >
/// late-sender > missing-progress > other), so they sum to the elapsed
/// time up to floating-point rounding.
struct Blame {
  double compute = 0.0;   ///< application compute on the critical rank
  double progress = 0.0;  ///< progress-engine work (posting, matching)
  double wire = 0.0;      ///< inbound payload serialized on the wire
  double late_sender = 0.0;       ///< waiting before the sender even posted
  double missing_progress = 0.0;  ///< data arrived, nobody advanced the op
  double other = 0.0;             ///< unattributed remainder
  [[nodiscard]] double total() const noexcept {
    return compute + progress + wire + late_sender + missing_progress + other;
  }
};

/// One backwards hop of the critical path: `rank` was blocked until the
/// message `corr` (posted by `from_rank` at `post_ts`) arrived at
/// `arrival_ts`.
struct CriticalHop {
  int rank = -1;
  int from_rank = -1;
  std::uint64_t corr = 0;
  double post_ts = 0.0;
  double arrival_ts = 0.0;
};

/// Critical-path analysis of one collective operation instance (all
/// nbc.op spans sharing one correlation id across ranks).
struct OpCritical {
  std::uint64_t corr = 0;
  int critical_rank = -1;  ///< rank whose nbc.op span finished last
  double start = 0.0;      ///< critical rank's op start
  double elapsed = 0.0;    ///< critical rank's op duration
  Blame blame;
  std::vector<CriticalHop> hops;  ///< newest hop first
};

/// Per-rank overlap/slack accounting aggregated over the rank's NBC
/// handles (= nbc.op spans).
struct RankOverlap {
  int rank = -1;
  std::uint64_t ops = 0;
  double op_time = 0.0;       ///< sum of op elapsed
  double compute_in_op = 0.0; ///< compute overlapped with op windows
  double wire_in_op = 0.0;    ///< correlated wire time within op windows
  /// Mean achieved overlap ratio: (C + W - E) / min(C, W), clamped to
  /// [0, 1]; the LogGP ideal is 1 (communication fully hidden).
  double overlap_ratio = 0.0;
  double slack = 0.0;  ///< sum of E - max(C, W): time neither side used
};

/// One agreed ADCL batch score replayed from the trace.
struct AdclScore {
  int func = -1;
  double score = 0.0;  ///< seconds (decoded from score_ns)
  int iteration = 0;
};

/// One attribute-heuristic pruning step replayed from adcl.eliminate /
/// adcl.eliminate.func events: the sweep over `attr` closed, fixing it at
/// `value` (function `kept` was best), and `pruned` left the candidates.
struct AdclElimination {
  int attr = -1;
  int value = 0;
  int kept = -1;
  int iteration = 0;
  std::vector<int> pruned;
};

/// One guideline-pruning conviction replayed from an adcl.prune event:
/// function `func` was removed because it violated a mock-up bound of
/// `bound` seconds (0 = convicted by name before tuning started).
struct AdclPrune {
  int func = -1;
  double bound = 0.0;
  int iteration = 0;
};

/// Decision audit of one tuned scenario.
struct AdclAudit {
  bool present = false;  ///< scenario recorded adcl events
  int winner = -1;
  int decision_iteration = -1;
  double decision_ts = 0.0;
  double winner_score = 0.0;
  double runner_up_score = 0.0;  ///< best non-winner score (0 if none)
  /// Relative margin (runner_up - winner) / winner; 0 with < 2 scores.
  double margin = 0.0;
  std::uint64_t samples_seen = 0;      ///< from per-scenario counters
  std::uint64_t samples_filtered = 0;  ///< (0 when unavailable)
  std::vector<AdclScore> scores;       ///< chronological
  /// Times drift detection re-opened tuning (adcl.retune events).
  int retunes = 0;
  /// Attribute-heuristic pruning audit, chronological (empty for
  /// non-eliminating policies).
  std::vector<AdclElimination> eliminations;
  /// Guideline-pruning audit (adcl.prune events), chronological.
  std::vector<AdclPrune> prunes;
};

/// Fault/resilience activity replayed from trace events; all zero (and
/// omitted from reports) for fault-free runs.
struct FaultSummary {
  std::uint64_t drops = 0;           ///< fault.drop (injected message loss)
  std::uint64_t dups = 0;            ///< fault.dup (injected duplicates)
  std::uint64_t dup_deliveries = 0;  ///< msg.dup_drop (dedup discarded)
  std::uint64_t retransmits = 0;     ///< msg.retransmit
  std::uint64_t send_failures = 0;   ///< msg.send_failure (budget spent)
  std::uint64_t fallbacks = 0;       ///< nbc.fallback (per-rank restarts)
  std::uint64_t stragglers = 0;      ///< fault.straggler (dilated compute)
  [[nodiscard]] bool any() const noexcept {
    return (drops | dups | dup_deliveries | retransmits | send_failures |
            fallbacks | stragglers) != 0;
  }
};

/// Fail-stop recovery audit replayed from mpi.rank_death / mpi.ft.detect /
/// mpi.ft.agree / nbc.rebuild / nbc.abort trace events; all zero (and
/// omitted from reports) for kill-free runs.  Latencies are means over
/// their populations: detection over deaths, the others over shrink
/// epochs (agreement rounds that removed ranks).  A death after sweep
/// completion yields an epoch with no rebuild phase; such epochs are
/// excluded from the rebuild / time-to-recover means.
struct RecoverySummary {
  std::uint64_t deaths = 0;       ///< mpi.rank_death (fail-stop kills)
  std::uint64_t epochs = 0;       ///< shrink epochs (membership changed)
  std::uint64_t rebuilds = 0;     ///< nbc.rebuild (per-rank handle rebinds)
  std::uint64_t aborted_ops = 0;  ///< nbc.abort (executions abandoned)
  double detection = 0.0;       ///< mean death -> detectable, seconds
  double agreement = 0.0;       ///< mean first detect -> agreement, seconds
  double rebuild = 0.0;         ///< mean agreement -> last rebuild, seconds
  double time_to_recover = 0.0; ///< mean first death -> last rebuild, seconds
  [[nodiscard]] bool any() const noexcept { return deaths != 0; }
};

/// Order statistics of one sample set ("MPI Benchmarking Revisited":
/// report the median with a nonparametric confidence interval, never a
/// bare mean).  The ~95% CI on the median comes from binomial
/// order-statistic ranks (normal approximation, z = 1.96); the rank
/// arithmetic is integer-exact, so the bounds are byte-deterministic
/// across compilers.  With n < 2 the CI degenerates to the sample.
struct SampleStats {
  std::uint64_t n = 0;
  double median = 0.0;
  double lo = 0.0;  ///< lower CI bound (an order statistic of the sample)
  double hi = 0.0;  ///< upper CI bound
};

/// Compute order statistics of `samples` (consumed; sorted in place).
[[nodiscard]] SampleStats order_stats(std::vector<double> samples);

/// Per-blame-category statistics over a scenario's op instances.
struct BlameStats {
  SampleStats compute;
  SampleStats progress;
  SampleStats wire;
  SampleStats late_sender;
  SampleStats missing_progress;
  SampleStats other;
};

/// Everything derived from one scenario trace.
struct ScenarioReport {
  std::string label;
  std::uint64_t ops_started = 0;
  std::uint64_t ops_completed = 0;
  /// Executions abandoned by fail-stop recovery (nbc.abort events); the
  /// conservation guideline G1 checks started == completed + aborted.
  std::uint64_t ops_aborted = 0;
  double mean_op_elapsed = 0.0;  ///< mean nbc.op duration, seconds
  /// Mean op elapsed over ops starting after the ADCL decision (equals
  /// mean_op_elapsed when there is no decision event).
  double post_decision_op_elapsed = 0.0;
  bool zero_compute = true;  ///< no compute spans anywhere in the trace
  Blame blame;               ///< summed over every op instance
  bool has_critical = false;
  OpCritical worst;  ///< the op instance with the largest elapsed
  std::vector<RankOverlap> ranks;
  AdclAudit adcl;
  FaultSummary faults;
  RecoverySummary recovery;
  /// Execution-resource counters from the per-scenario trace (0 when the
  /// trace predates them): fibers constructed (0 for machine-mode runs)
  /// and the World's flat per-rank arena footprint at destruction.
  std::uint64_t fibers_created = 0;
  std::uint64_t peak_arena_bytes = 0;
  /// Repetition-aware statistics over the scenario's op instances (one
  /// sample per collective instance: the critical rank's elapsed time
  /// and its blame partition).  `min_reps_met` flags whether the sample
  /// count reaches Options::min_reps — reports below that threshold are
  /// smoke signals, not measurements (see docs/METHODOLOGY.md).
  SampleStats op_stats;
  BlameStats blame_stats;
  bool min_reps_met = false;
  /// Every op instance's critical-rank analysis, ordered by correlation
  /// id (deterministic).  This is the raw material of the profile
  /// exporters (src/obs: collapsed-stack / speedscope frames are
  /// rank;op;phase weighted by these blame partitions); not serialized
  /// into the JSON report.
  std::vector<OpCritical> op_criticals;
  /// Events discarded by the trace buffer cap (NBCTUNE_TRACE_MAX_EVENTS);
  /// non-zero means every number above is computed from a truncated
  /// event stream and should be read as a lower bound.
  std::uint64_t dropped_events = 0;
  [[nodiscard]] bool truncated() const noexcept { return dropped_events > 0; }
};

/// Outcome of one performance-guideline check.
struct GuidelineResult {
  std::string id;           ///< "G1".."G7"
  std::string description;
  int checked = 0;  ///< comparisons evaluated
  int passed = 0;
  std::vector<std::string> violations;  ///< human-readable, deterministic
  [[nodiscard]] const char* status() const noexcept {
    if (checked == 0) return "n/a";
    return passed == checked ? "pass" : "FAIL";
  }
};

struct Report {
  std::vector<ScenarioReport> scenarios;
  std::vector<GuidelineResult> guidelines;
  /// Session-wide counter totals (filled by the CLI from the flat
  /// counter dump; empty on the in-process path, where counters live
  /// per-scenario in ScenarioTrace::counters instead).
  std::map<std::string, std::uint64_t> session_counters;
};

// ------------------------------------------------------------- analysis

struct Options {
  /// Tolerance for guideline comparisons (G2/G3): candidate may exceed
  /// the reference by this relative fraction before it counts as a
  /// violation (tuning measures under noise, so exact dominance is not a
  /// realistic requirement — see paper §IV).
  double epsilon = 0.25;
  /// Allowed relative dip for the message-size monotonicity check (G4)
  /// and the rank-count monotonicity check (G6).
  double monotonicity_tolerance = 0.05;
  /// Hop limit for the backwards critical-path walk.
  int max_hops = 16;
  /// Minimum op-instance samples for a scenario's statistics to count as
  /// a measurement ("MPI Benchmarking Revisited": repetition control);
  /// below this ScenarioReport::min_reps_met is false.
  int min_reps = 5;
};

/// Analyze a batch of scenario traces (one bench run).  Deterministic:
/// output depends only on the trace contents and options.
[[nodiscard]] Report analyze(const std::vector<ScenarioTrace>& traces,
                             const Options& opts = {});

// -------------------------------------------------------------- writers

/// Machine-readable report.  All numeric fields are integers (times in
/// nanoseconds, ratios in basis points), so the bytes are identical
/// across compilers and libcs — CI diffs this against a committed
/// golden.
void write_json(std::ostream& os, const Report& report);

/// Human-readable tables (same content, friendlier units).
void write_table(std::ostream& os, const Report& report);

// ---------------------------------------------------- label conventions

/// Parsed scenario label: "<op> <platform> np<N> <bytes>B <what>"
/// (microbench convention; see harness/microbench.cpp).  A fault plan
/// rides in the last token as "<what>+plan=<name>" and is split off into
/// `plan`; a non-default execution mode rides after it as "+exec=<mode>"
/// and is split off into `exec`; a topology tag rides last as
/// "+topo=<tag>" and is split off into `topo`.  `valid` is false for
/// labels of other
/// shapes (e.g. the FFT benches), which then only participate in the
/// universal guideline G1.
struct LabelKey {
  bool valid = false;
  std::string op;
  std::string platform;
  int nprocs = 0;
  std::uint64_t bytes = 0;
  std::string what;  ///< "fixed:<impl>" or "adcl:<policy>"
  std::string plan;  ///< fault-plan name; empty = fault-free
  std::string exec;  ///< execution-mode tag; empty = fiber (untagged)
  std::string topo;  ///< topology tag; empty = untagged
  /// Group key ignoring the what part (G2/G3 compare within a group).
  /// Includes the plan: faulted runs only compare against equally
  /// faulted references.
  [[nodiscard]] std::string group() const;
  /// Group key ignoring the message size (G4/G5 sweep sizes).
  [[nodiscard]] std::string size_group() const;
  /// Group key ignoring the process count (G6 sweeps ranks).
  [[nodiscard]] std::string rank_group() const;
};

[[nodiscard]] LabelKey parse_label(const std::string& label);

}  // namespace nbctune::analyze
