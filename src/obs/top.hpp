#pragma once

// nbctune-top's model/view: TopState consumes nbctune-live-v1 JSONL
// lines (see live.hpp) and renders a one-screen dashboard.  Parsing and
// rendering live here — not in the tool binary — so tests can drive the
// state machine line by line without a terminal.
//
// The stream may be interleaved with non-JSON text (a driver writing
// `--live-jsonl=-` shares stdout with its result tables); feed_line
// silently skips anything that does not parse as a live record.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace nbctune::obs {

class TopState {
 public:
  /// Consume one line of input.  Returns true when the line was a live
  /// record (any type), false for blank/foreign lines (skipped).
  bool feed_line(const std::string& line);

  /// Render the dashboard.  With `ansi`, guideline tiles and the
  /// progress bar use color; the caller owns screen clearing.
  void render(std::ostream& os, bool ansi) const;

  // ------------------------------------------------ inspectable model
  struct OpAgg {
    std::uint64_t scenarios = 0;
    std::uint64_t ops = 0;
    long long median_sum_ns = 0;  ///< sum of per-scenario medians
    long long blame_bp_sum[6] = {0, 0, 0, 0, 0, 0};  ///< summed shares
  };

  struct Gauges {
    std::uint64_t pool_submitted = 0;
    std::uint64_t pool_completed = 0;
    std::uint64_t pool_steals = 0;
    std::uint64_t pool_queued = 0;
    std::uint64_t pool_inflight = 0;
    std::uint64_t trace_events = 0;
    std::uint64_t trace_dropped = 0;
    std::uint64_t fibers = 0;
    std::uint64_t peak_arena_bytes = 0;
    std::uint64_t rss_bytes = 0;
    bool seen = false;
  };

  /// Fail-stop recovery aggregates summed over finished scenarios that
  /// carried a "recovery" block (kill-plan sweeps).
  struct Recovery {
    std::uint64_t scenarios = 0;  ///< scenarios that saw >= 1 death
    std::uint64_t deaths = 0;
    std::uint64_t epochs = 0;
    std::uint64_t rebuilds = 0;
    std::uint64_t aborted_ops = 0;
    long long detection_sum_ns = 0;  ///< sum of per-scenario means
    long long ttr_sum_ns = 0;        ///< sum of time_to_recover means
  };

  [[nodiscard]] const std::string& bench() const noexcept { return bench_; }
  [[nodiscard]] std::uint64_t submitted() const noexcept { return submitted_; }
  [[nodiscard]] std::uint64_t started() const noexcept { return started_; }
  [[nodiscard]] std::uint64_t finished() const noexcept { return finished_; }
  [[nodiscard]] std::uint64_t failed() const noexcept { return failed_; }
  [[nodiscard]] const std::vector<std::string>& failures() const noexcept {
    return failures_;
  }
  [[nodiscard]] const Recovery& recovery() const noexcept { return recovery_; }
  [[nodiscard]] bool done() const noexcept { return !status_.empty(); }
  [[nodiscard]] const std::string& status() const noexcept { return status_; }
  [[nodiscard]] long long last_t_ms() const noexcept { return last_t_ms_; }
  /// Wall-clock estimate of time to completion in ms (-1 = unknown).
  [[nodiscard]] long long eta_ms() const noexcept;
  [[nodiscard]] const std::map<std::string, OpAgg>& ops() const noexcept {
    return ops_;
  }
  /// Guideline id -> merged status ("pass"/"FAIL"/"n/a"); FAIL is sticky.
  [[nodiscard]] const std::map<std::string, std::string>& guidelines()
      const noexcept {
    return guidelines_;
  }
  [[nodiscard]] const Gauges& gauges() const noexcept { return gauges_; }
  [[nodiscard]] std::uint64_t seq_errors() const noexcept {
    return seq_errors_;
  }

 private:
  std::string bench_;
  int threads_ = 0;
  std::string status_;  ///< "" while running; "ok"/"aborted" after summary
  std::uint64_t submitted_ = 0;
  std::uint64_t started_ = 0;
  std::uint64_t finished_ = 0;
  std::uint64_t failed_ = 0;            ///< scenario bodies that threw
  std::vector<std::string> failures_;   ///< "task N: error" (first few)
  Recovery recovery_;
  long long last_t_ms_ = 0;
  long long last_seq_ = -1;
  std::uint64_t seq_errors_ = 0;  ///< non-monotonic seq fields seen
  std::uint64_t dropped_events_ = 0;
  std::map<std::string, OpAgg> ops_;
  std::map<std::string, std::string> guidelines_;
  std::vector<std::string> recent_;  ///< last few finished labels
  Gauges gauges_;
};

}  // namespace nbctune::obs
