#pragma once

// Serial complex FFT: iterative radix-2 for powers of two, Bluestein's
// chirp-z algorithm for arbitrary lengths.  Used by the distributed 3-D
// kernel in real-math mode and by the tests as a verified building block.

#include <complex>
#include <cstddef>
#include <vector>

namespace nbctune::fft {

using cplx = std::complex<double>;

/// In-place FFT of length n (any n >= 1).  inverse=true applies the
/// unscaled-input inverse transform including the 1/n normalization.
void fft(cplx* data, std::size_t n, bool inverse = false);

/// In-place radix-2 FFT; n must be a power of two.
void fft_pow2(cplx* data, std::size_t n, bool inverse = false);

[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

/// O(n^2) reference DFT (tests and documentation of the convention).
std::vector<cplx> dft_reference(const cplx* data, std::size_t n,
                                bool inverse = false);

/// Standard FFT cost model: ~5 n log2(n) floating-point operations.
[[nodiscard]] double fft_flops(std::size_t n) noexcept;

}  // namespace nbctune::fft
