#pragma once

// Internal request objects and the per-rank request pool.
//
// Requests track the state machine of one non-blocking point-to-point
// operation.  They live in a per-rank arena; handles (mpi::Req) carry an
// index plus generation so stale handles are detected after slot reuse.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "mpi/types.hpp"

namespace nbctune::mpi {

enum class ReqKind : std::uint8_t { Send, Recv };

enum class ReqState : std::uint8_t {
  // --- send side ---
  EagerInFlight,  ///< payload handed to NIC; local completion event pending
  RtsSent,        ///< rendezvous handshake started, waiting for CTS
  BulkReady,      ///< CTS received; bulk transfer not yet started
  BulkNic,        ///< NIC-driven bulk in flight; completion event pending
  BulkCpu,        ///< CPU-driven bulk; chunks pushed from the progress engine
  // --- receive side ---
  Posted,         ///< waiting for a matching envelope
  WaitBulk,       ///< matched an RTS, CTS sent, bulk data pending
  // --- both ---
  Complete,       ///< done; waiting to be observed by test/wait
};

/// Which control/eager message this request retransmits on RTO expiry
/// (lossy fault plans only; None everywhere else).
enum class RexmitKind : std::uint8_t { None, Eager, Rts, Cts };

/// One pending operation (internal; see mpi::Req for the public handle).
struct Request {
  std::uint32_t generation = 0;  // even = free, odd = live
  ReqKind kind = ReqKind::Send;
  ReqState state = ReqState::Complete;
  bool complete = false;
  bool chunk_in_flight = false;  // CPU-driven bulk: a push is on the wire

  int peer = kAnySource;  ///< world rank of the peer (resolved for sends)
  int context = 0;
  int tag = 0;
  int rail = -1;  ///< pinned NIC rail (-1 = transport default spreading)
  std::size_t bytes = 0;
  std::size_t cursor = 0;  ///< bytes pushed so far (CPU-driven bulk)

  const void* send_buf = nullptr;
  void* recv_buf = nullptr;

  std::uint64_t post_seq = 0;  ///< matching order among posted receives

  /// For rendezvous: identifies this request to the peer (packed handle).
  std::uint64_t match_id = 0;
  /// For senders: the receiver-side request the bulk completes (from CTS).
  std::uint64_t peer_match_id = 0;
  /// Trace correlation of the bulk data transfer (CPU-chunked or NIC);
  /// links its wire spans to the receiver-side completion instant.
  std::uint64_t xfer_seq = 0;

  // --- resilience (active only under a lossy fault plan) ---
  bool failed = false;        ///< retries exhausted; wait() throws, NBC
                              ///< handles fall back
  bool acked = false;         ///< peer acknowledged the tracked message
  RexmitKind rexmit = RexmitKind::None;
  int retries_left = 0;
  double rto = 0.0;           ///< current timeout (doubles per retransmit)
  std::uint64_t timer_id = 0; ///< pending RTO engine event (0 = none)

  Status status;  ///< filled on receive completion
};

/// Per-rank arena of requests with free-list reuse and generation counting.
/// Storage is chunked (256-request blocks): addresses stay stable across
/// growth (hot paths cache Request*) with vector-like locality.
class RequestPool {
 public:
  // The first chunk is deliberately tiny: collective rounds keep only a
  // handful of requests in flight per rank, and at 100k+ ranks a 256-slot
  // first chunk per pool would dominate world memory.  Pools that do grow
  // past it switch to full-size chunks.
  static constexpr std::uint32_t kFirstChunkSize = 8;
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  /// Allocate a live request; the returned handle's generation is odd.
  Req allocate() {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      idx = size_++;
      if (chunk_of(idx) >= chunks_.size()) {
        chunks_.push_back(std::make_unique<Request[]>(
            chunks_.empty() ? kFirstChunkSize : kChunkSize));
      }
    }
    Request& r = slot(idx);
    r = Request{};
    r.generation = next_gen_;
    next_gen_ += 2;  // keep parity stable; 0 is reserved for "null"
    return Req{idx, r.generation};
  }

  /// Release an observed request back to the pool.
  void release(Req h) {
    Request& r = get(h);
    r.generation = 0;
    free_.push_back(h.index);
  }

  /// Dereference a handle; throws on stale or null handles.
  Request& get(Req h) {
    if (h.generation == 0 || h.index >= size_) {
      throw std::out_of_range("stale or null request handle");
    }
    Request& r = slot(h.index);
    if (r.generation != h.generation) {
      throw std::out_of_range("stale or null request handle");
    }
    return r;
  }

  /// True if the handle still refers to a live request.
  [[nodiscard]] bool live(Req h) const noexcept {
    return h.generation != 0 && h.index < size_ &&
           slot(h.index).generation == h.generation;
  }

  /// Direct access by index (transport events); caller checks generation.
  Request& at(std::uint32_t idx) {
    if (idx >= size_) throw std::out_of_range("request index out of range");
    return slot(idx);
  }

  /// Stable pointer for a live handle (chunked storage: growth never
  /// relocates).  Hot paths cache this to avoid repeated checked lookups.
  Request* ptr(Req h) { return &get(h); }

  [[nodiscard]] std::size_t live_count() const noexcept {
    return size_ - free_.size();
  }

  /// Visit every live request's handle in ascending slot order.  The
  /// callback must not allocate or release from the pool while iterating.
  template <typename F>
  void for_each_live(F&& f) const {
    for (std::uint32_t i = 0; i < size_; ++i) {
      const Request& r = slot(i);
      if ((r.generation & 1u) != 0) f(Req{i, r.generation});
    }
  }

  /// Bytes held by allocated request slots (arena accounting).
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    if (chunks_.empty()) return 0;
    return (kFirstChunkSize + (chunks_.size() - 1) * kChunkSize) *
           sizeof(Request);
  }

 private:
  static constexpr std::uint32_t chunk_of(std::uint32_t idx) noexcept {
    return idx < kFirstChunkSize
               ? 0
               : 1 + ((idx - kFirstChunkSize) >> kChunkShift);
  }
  Request& slot(std::uint32_t idx) noexcept {
    return idx < kFirstChunkSize
               ? chunks_[0][idx]
               : chunks_[chunk_of(idx)][(idx - kFirstChunkSize) &
                                        (kChunkSize - 1)];
  }
  const Request& slot(std::uint32_t idx) const noexcept {
    return idx < kFirstChunkSize
               ? chunks_[0][idx]
               : chunks_[chunk_of(idx)][(idx - kFirstChunkSize) &
                                        (kChunkSize - 1)];
  }

  std::vector<std::unique_ptr<Request[]>> chunks_;
  std::uint32_t size_ = 0;
  std::vector<std::uint32_t> free_;
  std::uint32_t next_gen_ = 1;
};

}  // namespace nbctune::mpi
