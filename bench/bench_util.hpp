#pragma once

// Shared helpers for the figure-reproduction benchmark binaries.

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "fault/fault.hpp"
#include "harness/microbench.hpp"
#include "harness/scenario_pool.hpp"
#include "harness/table.hpp"
#include "net/topology.hpp"
#include "obs/live.hpp"
#include "obs/sampler.hpp"
#include "trace/trace.hpp"

namespace nbctune::bench {

/// Scale knob: benches default to a reduced iteration/test budget that
/// preserves the paper's shapes; `--full` runs closer to paper scale.
/// `--threads N` (or NBCTUNE_THREADS) shards independent scenarios across
/// a ScenarioPool; results are aggregated in submission order, so stdout
/// is byte-identical at any thread count (timing goes to stderr).
/// `--trace <file>` writes a Chrome trace-event JSON of every simulated
/// scenario (load in ui.perfetto.dev); `--trace-counters <file>` writes
/// the flat counter/histogram dump for CI diffing.  `--report[=json]`
/// runs the post-hoc trace analysis (src/analyze) over every scenario
/// when the run finishes — critical paths, overlap accounting, the ADCL
/// decision audit and the performance guidelines — and prints it to
/// stderr (table) or writes it with `--report-out <file>`.  All exports
/// are byte-deterministic at any thread count and never touch stdout.
/// `--exec=fiber|machine` selects the execution mode for fixed runs
/// (machine: fiberless state machines, scales to 100k+ ranks; outputs
/// byte-identical to fiber mode wherever both run).  `--fiber-stack N`
/// sets the per-fiber stack in bytes (fiber mode only; default 256 KiB
/// or NBCTUNE_FIBER_STACK).  `--list-platforms` dumps every preset's
/// node/core/NIC counts, per-level link parameters and hierarchy shape
/// (net::describe_platform) to stdout and exits before the sweep.
/// `--list-plans` likewise dumps every canned fault plan — name, a
/// one-line description and the exact spec string a driver's fault
/// option accepts — and exits before the sweep.
/// `--live-jsonl=PATH|-` streams scenario lifecycle records as JSONL
/// while the sweep runs (watch with nbctune-top); the terminal summary
/// record embeds the exact --report=json bytes.  `--live-sample-ms N`
/// sets the gauge sampling period of the live stream (default 100,
/// 0 = off).
struct Scale {
  enum class ReportMode { None, Table, Json };
  bool full = false;
  int threads = 0;  ///< 0 = auto (NBCTUNE_THREADS, then hardware)
  harness::ExecMode exec = harness::ExecMode::Fiber;
  std::size_t fiber_stack = 0;  ///< 0 = sim default
  std::string trace_path;     ///< Chrome trace-event JSON output, if set
  std::string counters_path;  ///< flat counter dump output, if set
  ReportMode report = ReportMode::None;
  std::string report_path;  ///< report output file ("" = stderr)
  bool list_platforms = false;  ///< dump presets and exit (Driver ctor)
  bool list_plans = false;      ///< dump canned fault plans and exit
  std::string live_jsonl;   ///< live JSONL stream path ("-" = stdout)
  int live_sample_ms = 100;  ///< gauge sampling period (0 = no sampler)
  [[nodiscard]] bool tracing() const noexcept {
    return !trace_path.empty() || !counters_path.empty() || reporting() ||
           live();
  }
  [[nodiscard]] bool live() const noexcept { return !live_jsonl.empty(); }
  [[nodiscard]] bool reporting() const noexcept {
    return report != ReportMode::None || !report_path.empty();
  }
  static Scale from_args(int argc, char** argv) {
    Scale s;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) s.full = true;
      if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        s.threads = std::atoi(argv[++i]);
      }
      if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
        s.trace_path = argv[++i];
      }
      if (std::strcmp(argv[i], "--trace-counters") == 0 && i + 1 < argc) {
        s.counters_path = argv[++i];
      }
      if (std::strcmp(argv[i], "--report") == 0 ||
          std::strcmp(argv[i], "--report=table") == 0) {
        s.report = ReportMode::Table;
      }
      if (std::strcmp(argv[i], "--report=json") == 0) {
        s.report = ReportMode::Json;
      }
      if (std::strcmp(argv[i], "--report-out") == 0 && i + 1 < argc) {
        s.report_path = argv[++i];
        if (s.report == ReportMode::None) s.report = ReportMode::Json;
      }
      if (std::strncmp(argv[i], "--exec=", 7) == 0) {
        const std::string mode = argv[i] + 7;
        if (mode == "fiber") {
          s.exec = harness::ExecMode::Fiber;
        } else if (mode == "machine") {
          s.exec = harness::ExecMode::Machine;
        } else {
          throw std::invalid_argument("--exec: expected fiber or machine, got " +
                                      mode);
        }
      }
      if (std::strcmp(argv[i], "--fiber-stack") == 0 && i + 1 < argc) {
        s.fiber_stack = static_cast<std::size_t>(std::atoll(argv[++i]));
      }
      if (std::strcmp(argv[i], "--list-platforms") == 0) {
        s.list_platforms = true;
      }
      if (std::strcmp(argv[i], "--list-plans") == 0) {
        s.list_plans = true;
      }
      if (std::strncmp(argv[i], "--live-jsonl=", 13) == 0) {
        s.live_jsonl = argv[i] + 13;
      }
      if (std::strcmp(argv[i], "--live-jsonl") == 0 && i + 1 < argc) {
        s.live_jsonl = argv[++i];
      }
      if (std::strcmp(argv[i], "--live-sample-ms") == 0 && i + 1 < argc) {
        s.live_sample_ms = std::atoi(argv[++i]);
      }
    }
    return s;
  }
};

/// Wall-clock scope for the parallel sweep phase.  Reports to stderr so
/// the deterministic stdout tables stay byte-identical across thread
/// counts.
class SweepTimer {
 public:
  SweepTimer(std::string label, int threads)
      : label_(std::move(label)),
        threads_(threads),
        t0_(std::chrono::steady_clock::now()) {}
  ~SweepTimer() {
    const auto dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
    std::cerr << "[" << label_ << "] wall-clock " << dt << " s at "
              << threads_ << " thread(s)\n";
  }

 private:
  std::string label_;
  int threads_;
  std::chrono::steady_clock::time_point t0_;
};

/// SIGINT handler installed while a live stream is open: finalize the
/// stream with an `aborted` summary record (async-signal-safe), then
/// die by the default disposition so the exit status stays honest.
extern "C" inline void nbctune_live_sigint(int sig) {
  obs::LiveSink::abort_from_signal();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

/// The shared spine of every bench driver: parses the common CLI flags,
/// owns the ScenarioPool, enables the trace session when `--trace` /
/// `--trace-counters` is given, and exports the trace files on
/// destruction.  Replaces the Scale/pool/SweepTimer boilerplate that each
/// driver used to carry.  With `--live-jsonl` it also owns the live
/// telemetry sink: scenario lifecycle records stream out during the
/// sweep and the destructor finalizes the stream with a summary record
/// embedding the exact --report=json bytes.
class Driver {
 public:
  Driver(std::string name, int argc, char** argv)
      : name_(std::move(name)),
        scale_(Scale::from_args(argc, argv)),
        pool_(scale_.threads) {
    if (scale_.list_platforms) {
      for (const char* p : {"crill", "whale", "whale-tcp", "bgp", "mega"}) {
        net::describe_platform(std::cout, net::platform_by_name(p));
        std::cout << "\n";
      }
      std::exit(0);
    }
    if (scale_.list_plans) {
      for (const fault::CannedPlan& p : fault::canned_plans()) {
        std::cout << p.name << "\n  " << p.desc << "\n  spec: " << p.spec
                  << "\n\n";
      }
      std::exit(0);
    }
    if (scale_.tracing()) trace::Session::enable();
    if (scale_.live()) {
      sink_ = std::make_unique<obs::LiveSink>(scale_.live_jsonl, name_,
                                              pool_.threads());
      if (!sink_->ok()) {
        std::cerr << "[" << name_ << "] cannot open live stream: "
                  << scale_.live_jsonl << "\n";
        sink_.reset();
      } else {
        trace::Session::set_listener(sink_.get());
        pool_.set_observer(sink_.get());
        obs::LiveSink::install_signal_target(sink_.get());
        std::signal(SIGINT, nbctune_live_sigint);
        if (scale_.live_sample_ms > 0) {
          sampler_ = std::make_unique<obs::Sampler>(
              [this] { sink_->sample(pool_.stats()); },
              scale_.live_sample_ms);
        }
      }
    }
  }

  ~Driver() {
    // Teardown order matters: stop the sampler (one final gauge record),
    // detach the completion-order listener/observer, export the
    // deterministic artifacts, then finalize the live stream with the
    // summary record built from the same analysis as --report.
    if (sampler_) sampler_->stop();
    if (sink_) {
      trace::Session::set_listener(nullptr);
      pool_.set_observer(nullptr);
    }
    if (scale_.tracing()) {
      auto& session = trace::Session::instance();
      if (!scale_.trace_path.empty()) {
        std::ofstream os(scale_.trace_path);
        session.write_chrome(os);
        std::cerr << "[" << name_ << "] trace: " << session.size()
                  << " scenario(s), " << session.total_events()
                  << " event(s) -> " << scale_.trace_path << "\n";
      }
      if (!scale_.counters_path.empty()) {
        std::ofstream os(scale_.counters_path);
        session.write_counters(os);
        std::cerr << "[" << name_ << "] counters -> " << scale_.counters_path
                  << "\n";
      }
      if (scale_.reporting() || sink_ != nullptr) {
        // One analysis pass (submission-order traces, so byte-identical
        // at any thread count) shared by the report and the summary.
        std::vector<analyze::ScenarioTrace> traces;
        for (const trace::FinishedTrace& t : session.drain()) {
          traces.push_back(analyze::from_finished(t));
        }
        const analyze::Report report = analyze::analyze(traces);
        if (scale_.reporting()) write_report(report, traces.size());
        if (sink_ != nullptr) {
          std::ostringstream json;
          analyze::write_json(json, report);
          sink_->write_summary(report, json.str());
          std::cerr << "[" << name_ << "] live stream -> "
                    << scale_.live_jsonl << "\n";
        }
      }
    }
    if (sink_) obs::LiveSink::install_signal_target(nullptr);
  }

  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  [[nodiscard]] const Scale& scale() const noexcept { return scale_; }
  [[nodiscard]] bool full() const noexcept { return scale_.full; }
  [[nodiscard]] harness::ScenarioPool& pool() noexcept { return pool_; }
  [[nodiscard]] int threads() const noexcept { return pool_.threads(); }

  /// Wall-clock scope for the sweep phase (stderr only).
  [[nodiscard]] SweepTimer timer() const {
    return SweepTimer(name_ + " sweep", pool_.threads());
  }

  /// Apply the execution-mode flags to a scenario (--exec, --fiber-stack).
  void configure(harness::MicroScenario& s) const noexcept {
    s.exec = scale_.exec;
    s.fiber_stack_bytes = scale_.fiber_stack;
  }

 private:
  /// Write the post-hoc analysis where --report asked for it.  Traces
  /// are adopted in submission order regardless of the worker count, so
  /// the report bytes are identical at --threads 1 and --threads N.
  void write_report(const analyze::Report& report, std::size_t count) {
    if (!scale_.report_path.empty()) {
      std::ofstream os(scale_.report_path);
      if (scale_.report == Scale::ReportMode::Table) {
        analyze::write_table(os, report);
      } else {
        analyze::write_json(os, report);
      }
      std::cerr << "[" << name_ << "] report: " << count
                << " scenario(s) -> " << scale_.report_path << "\n";
    } else if (scale_.report == Scale::ReportMode::Json) {
      analyze::write_json(std::cerr, report);
    } else {
      analyze::write_table(std::cerr, report);
    }
  }

  std::string name_;
  Scale scale_;
  harness::ScenarioPool pool_;
  std::unique_ptr<obs::LiveSink> sink_;
  std::unique_ptr<obs::Sampler> sampler_;
};

/// Print one verification run as a figure-style table: every fixed
/// implementation plus the two ADCL policies, flagged with the winner.
inline void print_verification(const std::string& title,
                               const harness::MicroScenario& s,
                               const harness::VerificationRun& v) {
  harness::banner(title);
  std::cout << "platform=" << s.platform.name << " nprocs=" << s.nprocs
            << " bytes=" << s.bytes << " compute/iter=" << s.compute_per_iter
            << "s progress_calls=" << s.progress_calls
            << " iterations=" << s.iterations << "\n\n";
  harness::Table t({"implementation", "loop_time[s]", "vs_best", "note"});
  const double best = v.fixed[v.best_fixed].loop_time;
  for (std::size_t f = 0; f < v.fixed.size(); ++f) {
    t.add_row({v.fixed[f].impl, harness::Table::num(v.fixed[f].loop_time),
               harness::Table::num(v.fixed[f].loop_time / best, 2),
               static_cast<int>(f) == v.best_fixed ? "<- best fixed" : ""});
  }
  t.add_row({"ADCL(brute-force)",
             harness::Table::num(v.adcl_bruteforce.loop_time),
             harness::Table::num(v.adcl_bruteforce.loop_time / best, 2),
             "winner=" + v.adcl_bruteforce.impl +
                 (v.bruteforce_correct ? " [correct]" : " [SUBOPTIMAL]")});
  t.add_row({"ADCL(heuristic)",
             harness::Table::num(v.adcl_heuristic.loop_time),
             harness::Table::num(v.adcl_heuristic.loop_time / best, 2),
             "winner=" + v.adcl_heuristic.impl +
                 (v.heuristic_correct ? " [correct]" : " [SUBOPTIMAL]")});
  t.print();
}

/// Compare fixed implementations only (the per-algorithm bars of the
/// influence figures); the per-implementation runs execute on the pool.
/// Returns the winner's name.
inline std::string print_fixed_comparison(const std::string& title,
                                          const harness::MicroScenario& s,
                                          harness::ScenarioPool& pool) {
  harness::banner(title);
  std::cout << "platform=" << s.platform.name << " nprocs=" << s.nprocs
            << " bytes=" << s.bytes << " compute/iter=" << s.compute_per_iter
            << "s progress_calls=" << s.progress_calls
            << " iterations=" << s.iterations << "\n\n";
  auto fset = harness::scenario_functionset(s);
  harness::Table t({"implementation", "loop_time[s]", "vs_best"});
  std::vector<harness::RunOutcome> runs(fset->size());
  pool.run_indexed(fset->size(), [&](std::size_t f) {
    runs[f] = harness::run_fixed(s, static_cast<int>(f));
  });
  double best = 1e300;
  std::string best_name;
  for (const auto& r : runs) {
    if (r.loop_time < best) {
      best = r.loop_time;
      best_name = r.impl;
    }
  }
  for (const auto& r : runs) {
    t.add_row({r.impl, harness::Table::num(r.loop_time),
               harness::Table::num(r.loop_time / best, 2)});
  }
  t.print();
  std::cout << "winner: " << best_name << "\n";
  return best_name;
}

}  // namespace nbctune::bench
