#pragma once

// Statistical filtering of execution-time samples (paper §III-A mentions
// ADCL's "statistical filtering"; suboptimal decisions in §IV-A are traced
// to unfiltered outliers from OS noise).  The scoring step turns a batch
// of noisy per-iteration measurements into one robust score.

#include <vector>

namespace nbctune::adcl {

enum class FilterKind {
  None,         ///< plain arithmetic mean
  Iqr,          ///< drop samples outside [q1 - 1.5 IQR, q3 + 1.5 IQR]
  TrimmedMean,  ///< drop the top and bottom trim fraction
};

/// Robust score of a sample batch under the chosen filter.  Lower is
/// better (scores are execution times).  Empty input returns +inf.
double robust_score(const std::vector<double>& samples, FilterKind kind,
                    double trim_frac = 0.25);

/// The samples surviving the filter (exposed for diagnostics and tests).
std::vector<double> filtered_samples(const std::vector<double>& samples,
                                     FilterKind kind, double trim_frac = 0.25);

/// Linear-interpolated quantile of an unsorted sample set, q in [0, 1].
double quantile(std::vector<double> samples, double q);

}  // namespace nbctune::adcl
