// Figure 2: Ialltoall verification runs — execution time of each fixed
// implementation, and of ADCL with the brute-force search and the
// attribute-based heuristic, for 128 KB messages: whale x {32, 128}
// processes and crill x {32, 128, 256} processes.
//
// Expected shape (paper §IV-A): ADCL lands on (or within 5% of) the best
// fixed implementation; its total time sits slightly above the best fixed
// run because the learning phase also measures the bad candidates.

#include "bench_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::harness;

int main(int argc, char** argv) {
  bench::Driver drv("fig2", argc, argv);
  struct Case {
    net::Platform platform;
    int nprocs;
  };
  const std::vector<Case> cases = {
      {net::whale(), 32},  {net::whale(), 128},  {net::crill(), 32},
      {net::crill(), 128}, {net::crill(), 256},
  };
  const int tests = drv.full() ? 8 : 4;
  auto scenario = [&](const Case& c) {
    MicroScenario s;
    s.platform = c.platform;
    s.nprocs = c.nprocs;
    s.op = OpKind::Ialltoall;
    s.bytes = 128 * 1024;
    // Paper: 50 s compute over 1000 iterations = 50 ms per iteration.
    s.compute_per_iter = 50e-3;
    s.progress_calls = 5;
    s.iterations = 3 * tests + (drv.full() ? 20 : 8);
    return s;
  };
  // One task per case; each task runs its fixed implementations and both
  // ADCL policies against its own engines.
  std::vector<VerificationRun> runs(cases.size());
  {
    auto timer = drv.timer();
    drv.pool().run_indexed(cases.size(), [&](std::size_t i) {
      runs[i] = run_verification(scenario(cases[i]), tests);
    });
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    bench::print_verification(
        "Fig 2: Ialltoall verification run (" + cases[i].platform.name +
            ", " + std::to_string(cases[i].nprocs) + " procs, 128 KB)",
        scenario(cases[i]), runs[i]);
  }
  return 0;
}
