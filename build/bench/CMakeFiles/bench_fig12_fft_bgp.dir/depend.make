# Empty dependencies file for bench_fig12_fft_bgp.
# This may be replaced when dependencies are built.
