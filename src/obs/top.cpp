#include "obs/top.hpp"

#include <cstdio>
#include <ostream>

#include "analyze/json_min.hpp"

namespace nbctune::obs {

namespace {

using analyze::jsonmin::Value;

std::uint64_t num_u64(const Value* v) {
  if (v == nullptr) return 0;
  const double d = v->as_num();
  return d > 0.0 ? static_cast<std::uint64_t>(d) : 0;
}

long long num_i64(const Value* v) {
  return v == nullptr ? 0 : static_cast<long long>(v->as_num());
}

std::string str_or(const Value* v, const char* fallback) {
  return v != nullptr && v->kind == Value::Kind::Str ? v->str : fallback;
}

std::string human_bytes(std::uint64_t b) {
  char buf[32];
  if (b >= 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f GiB", static_cast<double>(b) / (1024.0 * 1024 * 1024));
  } else if (b >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", static_cast<double>(b) / (1024.0 * 1024));
  } else if (b >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", static_cast<double>(b) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(b));
  }
  return buf;
}

std::string human_ms(long long ms) {
  char buf[32];
  if (ms >= 60000) {
    std::snprintf(buf, sizeof(buf), "%lldm%02llds", ms / 60000,
                  (ms % 60000) / 1000);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fs", static_cast<double>(ms) / 1e3);
  }
  return buf;
}

std::string human_us(long long ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f us", static_cast<double>(ns) / 1e3);
  return buf;
}

constexpr const char* kBlameNames[6] = {"compute",     "progress",
                                        "wire",        "late_sender",
                                        "missing_progress", "other"};

}  // namespace

bool TopState::feed_line(const std::string& line) {
  std::size_t a = 0;
  std::size_t b = line.size();
  while (a < b && (line[a] == ' ' || line[a] == '\t')) ++a;
  while (b > a && (line[b - 1] == ' ' || line[b - 1] == '\t' ||
                   line[b - 1] == '\r' || line[b - 1] == '\n')) {
    --b;
  }
  if (a >= b || line[a] != '{') return false;
  Value v;
  try {
    v = analyze::jsonmin::parse(line.substr(a, b - a));
  } catch (const std::exception&) {
    return false;  // foreign line (e.g. a bench table on shared stdout)
  }
  const Value* type = v.get("type");
  if (type == nullptr || type->kind != Value::Kind::Str) return false;

  const long long seq = num_i64(v.get("seq"));
  if (seq <= last_seq_ && last_seq_ >= 0) ++seq_errors_;
  if (seq > last_seq_) last_seq_ = seq;
  const long long t_ms = num_i64(v.get("t_ms"));
  if (t_ms > last_t_ms_) last_t_ms_ = t_ms;

  if (type->str == "hello") {
    bench_ = str_or(v.get("bench"), "");
    threads_ = static_cast<int>(num_i64(v.get("threads")));
  } else if (type->str == "batch") {
    submitted_ += num_u64(v.get("tasks"));
  } else if (type->str == "scenario") {
    const std::string phase = str_or(v.get("phase"), "");
    if (phase == "started") {
      ++started_;
    } else if (phase == "failed") {
      ++failed_;
      if (failures_.size() < 4) {
        failures_.push_back("task " +
                            std::to_string(num_i64(v.get("index"))) + ": " +
                            str_or(v.get("error"), "?"));
      }
    } else if (phase == "finished") {
      ++finished_;
      const std::string label = str_or(v.get("label"), "?");
      recent_.push_back(label);
      if (recent_.size() > 4) recent_.erase(recent_.begin());
      // Aggregate by the op (first label token; "?" for foreign labels).
      const std::size_t sp = label.find(' ');
      OpAgg& agg = ops_[sp == std::string::npos ? label : label.substr(0, sp)];
      ++agg.scenarios;
      agg.ops += num_u64(v.get("ops"));
      agg.median_sum_ns += num_i64(v.get("median_op_ns"));
      if (const Value* blame = v.get("blame_bp")) {
        for (int p = 0; p < 6; ++p) {
          agg.blame_bp_sum[p] += num_i64(blame->get(kBlameNames[p]));
        }
      }
      dropped_events_ += num_u64(v.get("dropped_events"));
      if (const Value* rec = v.get("recovery")) {
        ++recovery_.scenarios;
        recovery_.deaths += num_u64(rec->get("deaths"));
        recovery_.epochs += num_u64(rec->get("epochs"));
        recovery_.rebuilds += num_u64(rec->get("rebuilds"));
        recovery_.aborted_ops += num_u64(rec->get("aborted_ops"));
        recovery_.detection_sum_ns += num_i64(rec->get("detection_ns"));
        recovery_.ttr_sum_ns += num_i64(rec->get("time_to_recover_ns"));
      }
      if (const Value* g = v.get("guidelines")) {
        if (const Value* ids = g->get("ids");
            ids != nullptr && ids->kind == Value::Kind::Arr) {
          for (const Value& id : *ids->arr) {
            if (id.kind != Value::Kind::Str) continue;
            const std::size_t eq = id.str.find('=');
            if (eq == std::string::npos) continue;
            const std::string gid = id.str.substr(0, eq);
            const std::string st = id.str.substr(eq + 1);
            std::string& merged = guidelines_[gid];
            // FAIL is sticky; pass beats n/a; n/a only fills blanks.
            if (merged == "FAIL") continue;
            if (st == "FAIL" || st == "pass" || merged.empty()) merged = st;
          }
        }
      }
    }
  } else if (type->str == "sample") {
    gauges_.seen = true;
    if (const Value* p = v.get("pool")) {
      gauges_.pool_submitted = num_u64(p->get("submitted"));
      gauges_.pool_completed = num_u64(p->get("completed"));
      gauges_.pool_steals = num_u64(p->get("steals"));
      gauges_.pool_queued = num_u64(p->get("queued"));
      gauges_.pool_inflight = num_u64(p->get("inflight"));
    }
    if (const Value* t = v.get("trace")) {
      gauges_.trace_events = num_u64(t->get("events"));
      gauges_.trace_dropped = num_u64(t->get("dropped"));
    }
    if (const Value* e = v.get("exec")) {
      gauges_.fibers = num_u64(e->get("fibers"));
      gauges_.peak_arena_bytes = num_u64(e->get("peak_arena_bytes"));
    }
    gauges_.rss_bytes = num_u64(v.get("rss_bytes"));
  } else if (type->str == "summary") {
    status_ = str_or(v.get("status"), "ok");
  }
  return true;
}

long long TopState::eta_ms() const noexcept {
  if (done() || finished_ == 0 || submitted_ <= finished_) return -1;
  const double per = static_cast<double>(last_t_ms_) /
                     static_cast<double>(finished_);
  return static_cast<long long>(per *
                                static_cast<double>(submitted_ - finished_));
}

void TopState::render(std::ostream& os, bool ansi) const {
  const char* bold = ansi ? "\x1b[1m" : "";
  const char* dim = ansi ? "\x1b[2m" : "";
  const char* reset = ansi ? "\x1b[0m" : "";

  os << bold << "nbctune-top" << reset << " — "
     << (bench_.empty() ? "(waiting for stream)" : bench_);
  if (threads_ > 0) os << "  " << dim << threads_ << " thread(s)" << reset;
  if (done()) {
    if (ansi) os << (status_ == "ok" ? "  \x1b[32m" : "  \x1b[31m");
    os << (ansi ? "" : "  ") << "[" << status_ << "]" << reset;
  }
  os << "\n\n";

  // Progress bar over submitted scenarios.
  const std::uint64_t total = submitted_;
  const std::uint64_t fin = finished_;
  constexpr int kBarWidth = 32;
  int filled = 0;
  if (total > 0) {
    filled = static_cast<int>(fin * kBarWidth / total);
    if (filled > kBarWidth) filled = kBarWidth;
  }
  os << "  progress [";
  if (ansi) os << "\x1b[32m";
  for (int i = 0; i < filled; ++i) os << '#';
  if (ansi) os << reset;
  for (int i = filled; i < kBarWidth; ++i) os << '.';
  os << "] " << fin << "/" << total;
  const std::uint64_t running = started_ > fin ? started_ - fin : 0;
  if (running > 0) os << "  (" << running << " running)";
  os << "  elapsed " << human_ms(last_t_ms_);
  const long long eta = eta_ms();
  if (eta >= 0) os << "  eta ~" << human_ms(eta);
  os << "\n";

  if (gauges_.seen) {
    os << "  pool     submitted " << gauges_.pool_submitted << "  completed "
       << gauges_.pool_completed << "  inflight " << gauges_.pool_inflight
       << "  queued " << gauges_.pool_queued << "  steals "
       << gauges_.pool_steals << "\n";
    os << "  trace    events " << gauges_.trace_events << "  dropped "
       << gauges_.trace_dropped << "  fibers " << gauges_.fibers
       << "  peak arena " << human_bytes(gauges_.peak_arena_bytes)
       << "  rss " << human_bytes(gauges_.rss_bytes) << "\n";
  }
  if (dropped_events_ > 0) {
    if (ansi) os << "\x1b[31m";
    os << "  WARNING  " << dropped_events_
       << " trace event(s) dropped by the buffer cap — stats are lower "
          "bounds" << reset << "\n";
  }
  if (failed_ > 0) {
    if (ansi) os << "\x1b[31m";
    os << "  CRASHED  " << failed_
       << " scenario(s) threw — sweep continued, driver will exit nonzero"
       << reset << "\n";
    for (const std::string& f : failures_) {
      os << "    " << dim << f << reset << "\n";
    }
  }
  if (recovery_.scenarios > 0) {
    const long long n = static_cast<long long>(recovery_.scenarios);
    os << "\n  " << bold << "recovery" << reset << "  deaths "
       << recovery_.deaths << "  epochs " << recovery_.epochs
       << "  rebuilds " << recovery_.rebuilds << "  aborted ops "
       << recovery_.aborted_ops << "\n"
       << "           mean detect " << human_us(recovery_.detection_sum_ns / n)
       << "  mean time-to-recover " << human_us(recovery_.ttr_sum_ns / n)
       << "\n";
  }

  if (!ops_.empty()) {
    os << "\n  " << bold << "per-op" << reset << "\n";
    for (const auto& [op, agg] : ops_) {
      os << "    " << op << "  n=" << agg.scenarios << "  median "
         << human_us(agg.scenarios > 0
                         ? agg.median_sum_ns /
                               static_cast<long long>(agg.scenarios)
                         : 0);
      os << "  blame";
      for (int p = 0; p < 6; ++p) {
        const long long mean_bp =
            agg.scenarios > 0
                ? agg.blame_bp_sum[p] / static_cast<long long>(agg.scenarios)
                : 0;
        if (mean_bp <= 0) continue;
        char buf[48];
        std::snprintf(buf, sizeof(buf), " %s %.1f%%", kBlameNames[p],
                      static_cast<double>(mean_bp) / 100.0);
        os << buf;
      }
      os << "\n";
    }
  }

  if (!guidelines_.empty()) {
    os << "\n  " << bold << "guidelines" << reset << "  ";
    for (const auto& [id, st] : guidelines_) {
      if (ansi) {
        if (st == "FAIL") {
          os << "\x1b[41;97m " << id << " \x1b[0m ";
        } else if (st == "pass") {
          os << "\x1b[42;30m " << id << " \x1b[0m ";
        } else {
          os << "\x1b[100m " << id << " \x1b[0m ";
        }
      } else {
        os << "[" << id << ":" << st << "] ";
      }
    }
    os << "\n";
  }

  if (!recent_.empty() && !done()) {
    os << "\n  " << dim << "recent" << reset << "\n";
    for (const std::string& r : recent_) {
      os << "    " << dim << r << reset << "\n";
    }
  }
  if (seq_errors_ > 0) {
    os << "\n  " << dim << "(" << seq_errors_
       << " out-of-order seq field(s) — merged streams?)" << reset << "\n";
  }
}

}  // namespace nbctune::obs
