file(REMOVE_RECURSE
  "CMakeFiles/nbctune_nbc.dir/handle.cpp.o"
  "CMakeFiles/nbctune_nbc.dir/handle.cpp.o.d"
  "libnbctune_nbc.a"
  "libnbctune_nbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbctune_nbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
