file(REMOVE_RECURSE
  "CMakeFiles/bench_fft_sweep.dir/bench_fft_sweep.cpp.o"
  "CMakeFiles/bench_fft_sweep.dir/bench_fft_sweep.cpp.o.d"
  "bench_fft_sweep"
  "bench_fft_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fft_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
