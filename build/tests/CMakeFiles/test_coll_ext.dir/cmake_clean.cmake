file(REMOVE_RECURSE
  "CMakeFiles/test_coll_ext.dir/test_coll_ext.cpp.o"
  "CMakeFiles/test_coll_ext.dir/test_coll_ext.cpp.o.d"
  "test_coll_ext"
  "test_coll_ext.pdb"
  "test_coll_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coll_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
