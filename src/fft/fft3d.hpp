#pragma once

// Distributed 3-D FFT application kernel (paper §IV-B, [14]).
//
// Slab decomposition: the N^3 complex grid is split along z into L = N/P
// planes per rank.  One iteration performs
//
//   1. per-plane 2-D FFTs in (x, y), processed in *tiles* of planes;
//   2. a transpose to x-pencil distribution via one non-blocking
//      all-to-all per tile, with up to *window* operations outstanding
//      (each in its own buffer pair) while later tiles compute;
//   3. 1-D FFTs along z on the received pencils.
//
// The paper's four overlap patterns are (window, tile) choices:
//   pipelined    (2, 1)     tiled        (2, 10)
//   windowed     (3, 1)     window-tiled (3, 10)
//
// Communication back-ends:
//   Blocking  MPI_Alltoall-style blocking transpose (no overlap)
//   LibNBC    non-blocking, fixed linear algorithm (LibNBC's default)
//   Adcl      non-blocking, run-time tuned; the window's requests share
//             one SelectionState (co-tuned) and an adcl::Timer brackets
//             the whole iteration (§III-D)
//
// In real-math mode the kernel moves and transforms actual data (verified
// against the serial reference in the tests); in cost-model mode buffers
// are elided and only modeled compute/copy time is charged, which keeps
// 1000-rank simulations tractable.

#include <complex>
#include <memory>
#include <vector>

#include "adcl/adcl.hpp"
#include "fft/fft1d.hpp"
#include "mpi/world.hpp"

namespace nbctune::fft {

enum class Pattern { Pipelined, Tiled, Windowed, WindowTiled };
enum class Backend { Blocking, LibNBC, Adcl };

[[nodiscard]] const char* pattern_name(Pattern p) noexcept;
[[nodiscard]] const char* backend_name(Backend b) noexcept;
/// (window, tile) of a pattern, per the paper's defaults.
[[nodiscard]] std::pair<int, int> pattern_params(Pattern p) noexcept;

struct Fft3dOptions {
  int n = 64;  ///< grid dimension (N^3 total); must be divisible by P
  Pattern pattern = Pattern::WindowTiled;
  Backend backend = Backend::LibNBC;
  bool real_math = false;  ///< move & transform actual data
  int progress_calls = 4;  ///< progress invocations per tile compute
  adcl::TuningOptions tuning;  ///< Adcl back-end only
  /// Adcl back-end: extend the function-set with blocking implementations
  /// (the modified function-set of the paper's §IV-B, Figs. 11/12).
  bool extended_set = false;
};

/// One rank's view of the distributed FFT.
class Fft3d {
 public:
  Fft3d(mpi::Ctx& ctx, mpi::Comm comm, Fft3dOptions opt);
  ~Fft3d();

  Fft3d(const Fft3d&) = delete;
  Fft3d& operator=(const Fft3d&) = delete;

  /// Execute one forward 3-D FFT (one application iteration).
  void run_iteration();

  /// Execute the inverse transform: from the pencil-resident spectrum
  /// (the state run_iteration() leaves behind) back to z-slab planes.
  /// Communication is the mirrored transpose through the same tuned
  /// requests; in real-math mode planes() afterwards reproduces the
  /// original input (round-trip identity, verified in the tests).
  void run_inverse_iteration();

  /// Local planes after an inverse transform, layout [zl][y][x].
  [[nodiscard]] const std::vector<cplx>& planes() const noexcept {
    return planes_data_;
  }

  // ---- geometry ----
  [[nodiscard]] int planes_per_rank() const noexcept { return planes_; }
  [[nodiscard]] int pencil_width() const noexcept { return width_; }
  [[nodiscard]] int tile_planes() const noexcept { return tile_planes_; }
  [[nodiscard]] int num_tiles() const noexcept { return tiles_; }
  [[nodiscard]] int window() const noexcept { return window_; }
  /// Bytes exchanged with each peer per tile transpose.
  [[nodiscard]] std::size_t block_bytes() const noexcept { return block_; }

  // ---- real-math data access ----
  /// Local input planes, layout [zl][y][x], zl in [0, planes_per_rank).
  void set_local_input(std::vector<cplx> planes);
  /// Result pencils after run_iteration(), layout [xl][y][z] with
  /// xl in [0, pencil_width): element (xl, ky, kz) holds the 3-D DFT
  /// coefficient G[kz][ky][kx = rank*width + xl].
  [[nodiscard]] const std::vector<cplx>& pencils() const noexcept {
    return pencils_;
  }

  // ---- tuning introspection (Adcl back-end) ----
  [[nodiscard]] const adcl::SelectionState* selection() const noexcept {
    return selection_.get();
  }

 private:
  void chunked_compute(double seconds, bool progress);
  void pack_tile(int tile, int slot);
  void unpack_tile(int tile, int slot);
  void pack_tile_inverse(int tile, int slot);
  void unpack_tile_inverse(int tile, int slot);
  void wait_slot(int slot, bool inverse);
  void start_slot(int slot);
  double copy_cost(std::size_t bytes) const;

  mpi::Ctx& ctx_;
  mpi::Comm comm_;
  Fft3dOptions opt_;
  int nprocs_;
  int me_;
  int planes_;       // L = N / P
  int width_;        // M = N / P (x columns per rank after transpose)
  int tile_planes_;  // planes per tile (divides L)
  int tiles_;        // L / tile_planes
  int window_;       // concurrent transposes (capped at tiles_)
  std::size_t block_;  // bytes per peer per tile

  // Per-slot buffers and requests.
  std::vector<std::vector<cplx>> send_;
  std::vector<std::vector<cplx>> recv_;
  std::vector<std::unique_ptr<adcl::Request>> reqs_;
  std::vector<int> slot_tile_;  // tile occupying each slot, -1 if free

  std::shared_ptr<adcl::SelectionState> selection_;
  std::unique_ptr<adcl::Timer> timer_;

  std::vector<cplx> planes_data_;  // [zl][y][x] (real math)
  std::vector<cplx> pencils_;      // [xl][y][z] (real math)
};

}  // namespace nbctune::fft
