// Selection policies and statistical filtering: driven directly with
// synthetic cost surfaces (no simulation needed), covering the brute
// force search, the attribute heuristic (including its documented failure
// mode on correlated surfaces), and the 2^k factorial design.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>
#include <vector>

#include "adcl/filtering.hpp"
#include "adcl/functionsets.hpp"
#include "adcl/guidelines.hpp"
#include "adcl/selection.hpp"

using namespace nbctune;
using namespace nbctune::adcl;

namespace {

/// A full-factorial synthetic function-set over the given attributes.
std::shared_ptr<FunctionSet> synthetic_fset(std::vector<Attribute> attrs) {
  AttributeSet aset(attrs);
  std::vector<Function> fns;
  std::vector<int> combo(attrs.size());
  std::function<void(std::size_t)> rec = [&](std::size_t a) {
    if (a == attrs.size()) {
      Function f;
      f.name = "f";
      for (int v : combo) f.name += "_" + std::to_string(v);
      f.attrs = combo;
      f.build = [](mpi::Ctx&, const OpArgs&) { return nbc::Schedule{}; };
      fns.push_back(std::move(f));
      return;
    }
    for (int v : attrs[a].values) {
      combo[a] = v;
      rec(a + 1);
    }
  };
  rec(0);
  return std::make_shared<FunctionSet>("synthetic", std::move(aset),
                                       std::move(fns));
}

struct DrivenResult {
  int winner;
  std::vector<int> visited;
};

/// Run a policy to completion against a cost oracle.
DrivenResult drive(PolicyKind kind, const FunctionSet& fset,
                   const std::function<double(const std::vector<int>&)>& cost) {
  auto policy = make_policy(kind, fset);
  DrivenResult r;
  int f = policy->first();
  while (f >= 0) {
    r.visited.push_back(f);
    f = policy->next(f, cost(fset.function(f).attrs));
  }
  r.winner = policy->winner();
  return r;
}

int oracle_best(const FunctionSet& fset,
                const std::function<double(const std::vector<int>&)>& cost) {
  int best = 0;
  for (std::size_t i = 1; i < fset.size(); ++i) {
    if (cost(fset.function(i).attrs) < cost(fset.function(best).attrs)) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

// ------------------------------------------------------------ BruteForce

TEST(BruteForce, VisitsEveryFunctionOnce) {
  auto fset = synthetic_fset({{"a", {0, 1, 2}}, {"b", {0, 1}}});
  auto cost = [](const std::vector<int>& v) {
    return 1.0 + v[0] * 0.3 + v[1] * 0.1;
  };
  auto r = drive(PolicyKind::BruteForce, *fset, cost);
  EXPECT_EQ(r.visited.size(), fset->size());
  std::set<int> unique(r.visited.begin(), r.visited.end());
  EXPECT_EQ(unique.size(), fset->size());
  EXPECT_EQ(r.winner, oracle_best(*fset, cost));
}

TEST(BruteForce, SingleFunctionDecidesImmediately) {
  auto fset = synthetic_fset({{"a", {7}}});
  auto policy = make_policy(PolicyKind::BruteForce, *fset);
  EXPECT_EQ(policy->first(), -1);
  EXPECT_EQ(policy->winner(), 0);
}

TEST(BruteForce, FindsGlobalMinOnArbitrarySurface) {
  auto fset = synthetic_fset({{"a", {0, 1, 2, 3}}, {"b", {0, 1, 2}}});
  // Rugged surface with the minimum in the interior.
  auto cost = [](const std::vector<int>& v) {
    return std::abs(v[0] - 2) * 1.7 + std::abs(v[1] - 1) * 0.9 +
           ((v[0] + v[1]) % 2) * 0.05;
  };
  auto r = drive(PolicyKind::BruteForce, *fset, cost);
  EXPECT_EQ(r.winner, oracle_best(*fset, cost));
}

// --------------------------------------------------- AttributeHeuristic

TEST(AttributeHeuristic, FindsOptimumOnSeparableSurface) {
  auto fset = synthetic_fset({{"fanout", {0, 1, 2, 3, 4, 5, 99}},
                              {"segsize", {32, 64, 128}}});
  auto cost = [](const std::vector<int>& v) {
    // Separable: best at fanout 3, segsize 64, no interaction.
    return std::abs(v[0] - 3) * 0.2 + std::abs(v[1] - 64) * 0.001;
  };
  auto r = drive(PolicyKind::AttributeHeuristic, *fset, cost);
  EXPECT_EQ(r.winner, oracle_best(*fset, cost));
  // The whole point: far fewer measurements than the 21 of brute force
  // (7 values + 2 remaining of the second attribute).
  EXPECT_LE(r.visited.size(), 9u + 1u);
  EXPECT_LT(r.visited.size(), fset->size());
}

TEST(AttributeHeuristic, PrunesByAttributeValue) {
  auto fset = synthetic_fset({{"a", {0, 1}}, {"b", {0, 1}}});
  auto cost = [](const std::vector<int>& v) {
    return v[0] * 1.0 + v[1] * 0.5;
  };
  auto r = drive(PolicyKind::AttributeHeuristic, *fset, cost);
  EXPECT_EQ(fset->function(r.winner).attrs, (std::vector<int>{0, 0}));
}

TEST(AttributeHeuristic, CanMissGlobalOptimumOnCorrelatedSurface) {
  // The heuristic assumes attributes are uncorrelated (paper §III-A).
  // Construct a surface where the best value of attribute a DEPENDS on b:
  // starting from base (a=0 row) it locks a=0, missing the global optimum
  // at (1, 1).
  auto fset = synthetic_fset({{"a", {0, 1}}, {"b", {0, 1}}});
  auto cost = [](const std::vector<int>& v) {
    if (v[0] == 0 && v[1] == 0) return 1.0;
    if (v[0] == 1 && v[1] == 0) return 2.0;  // phase 1 prefers a=0
    if (v[0] == 0 && v[1] == 1) return 1.5;  // phase 2 keeps b=0
    return 0.1;                              // global optimum (1,1), unseen
  };
  auto r = drive(PolicyKind::AttributeHeuristic, *fset, cost);
  EXPECT_NE(r.winner, oracle_best(*fset, cost));
  // ... while the factorial design measures all corners and finds it.
  auto r2k = drive(PolicyKind::TwoKFactorial, *fset, cost);
  EXPECT_EQ(r2k.winner, oracle_best(*fset, cost));
}

TEST(AttributeHeuristic, NoAttributesFallsBackToBruteForce) {
  AttributeSet empty;
  std::vector<Function> fns;
  for (int i = 0; i < 4; ++i) {
    Function f;
    f.name = "f" + std::to_string(i);
    f.build = [](mpi::Ctx&, const OpArgs&) { return nbc::Schedule{}; };
    fns.push_back(std::move(f));
  }
  FunctionSet fset("plain", empty, fns);
  auto cost_of = [](int i) { return i == 2 ? 0.5 : 1.0 + i; };
  auto policy = make_policy(PolicyKind::AttributeHeuristic, fset);
  int f = policy->first();
  int seen = 0;
  while (f >= 0) {
    ++seen;
    f = policy->next(f, cost_of(f));
  }
  EXPECT_EQ(seen, 4);
  EXPECT_EQ(policy->winner(), 2);
}

// -------------------------------------------------------- TwoKFactorial

TEST(TwoKFactorial, MeasuresCornersThenRefines) {
  auto fset = synthetic_fset({{"a", {0, 1, 2, 3}}, {"b", {10, 20, 30}}});
  auto cost = [](const std::vector<int>& v) {
    return std::abs(v[0] - 1) + std::abs(v[1] - 20) * 0.05;
  };
  auto r = drive(PolicyKind::TwoKFactorial, *fset, cost);
  EXPECT_EQ(r.winner, oracle_best(*fset, cost));
  // 4 corners + interior refinement < full 12-function sweep.
  EXPECT_LT(r.visited.size(), fset->size());
}

TEST(TwoKFactorial, MainEffectSigns) {
  auto fset = synthetic_fset({{"a", {0, 1}}, {"b", {0, 1}}});
  // Raising a strongly increases cost; raising b decreases it.
  auto cost = [](const std::vector<int>& v) {
    return 1.0 + 2.0 * v[0] - 0.5 * v[1];
  };
  auto policy = make_policy(PolicyKind::TwoKFactorial, *fset);
  int f = policy->first();
  while (f >= 0) f = policy->next(f, cost(fset->function(f).attrs));
  auto effects = factorial_main_effects(*policy);
  ASSERT_EQ(effects.size(), 2u);
  EXPECT_NEAR(effects[0], 2.0, 1e-12);
  EXPECT_NEAR(effects[1], -0.5, 1e-12);
}

TEST(TwoKFactorial, HandlesCorrelatedSurfaces) {
  auto fset = synthetic_fset({{"a", {0, 1}}, {"b", {0, 1}}, {"c", {0, 1}}});
  // XOR-flavoured interaction between a and b.
  auto cost = [](const std::vector<int>& v) {
    return (v[0] ^ v[1]) * 1.0 + v[2] * 0.25 + 0.1;
  };
  auto r = drive(PolicyKind::TwoKFactorial, *fset, cost);
  const auto& w = fset->function(r.winner).attrs;
  EXPECT_EQ(w[0] ^ w[1], 0);
  EXPECT_EQ(w[2], 0);
}

// ------------------------------------------------- GuidelinePrunedPolicy

namespace {

/// Drive the guideline-pruned policy against a cost oracle and a book.
DrivenResult drive_pruned(const FunctionSet& fset, const GuidelineBook& book,
                          const std::function<double(int)>& cost) {
  auto policy = make_policy(PolicyKind::GuidelinePruned, fset, &book);
  DrivenResult r;
  int f = policy->first();
  while (f >= 0) {
    r.visited.push_back(f);
    f = policy->next(f, cost(f));
  }
  r.winner = policy->winner();
  return r;
}

}  // namespace

TEST(GuidelinePruned, MockupBoundConvictsAfterOneMeasurement) {
  auto fset = make_ialltoall_functionset();  // linear, dissemination, pairwise
  GuidelineBook book;
  // Bound 1.0 s/iter, epsilon 0.25: any score above 1.25 is convicted.
  book.add_mockup("split:mockup", 1.0);
  auto cost = [](int f) { return f == 2 ? 0.9 : 3.0; };
  auto policy = make_policy(PolicyKind::GuidelinePruned, *fset, &book);
  DrivenResult r;
  int f = policy->first();
  while (f >= 0) {
    r.visited.push_back(f);
    f = policy->next(f, cost(f));
  }
  r.winner = policy->winner();
  EXPECT_EQ(r.winner, 2);
  // Every member is measured at most once: conviction needs no repeats.
  EXPECT_EQ(r.visited.size(), fset->size());
  // Both losers carry an audit record naming the convicting guideline.
  const auto& elims = policy->eliminations();
  ASSERT_EQ(elims.size(), 2u);
  for (const auto& e : elims) {
    EXPECT_EQ(e.guideline, "split:mockup");
    EXPECT_DOUBLE_EQ(e.bound, 1.0);
    EXPECT_EQ(e.attr, -1);  // marks a guideline prune, not an attr sweep
    ASSERT_EQ(e.pruned.size(), 1u);
    EXPECT_NE(e.pruned[0], 2);
  }
}

TEST(GuidelinePruned, PreMarkedMemberIsNeverMeasured) {
  auto fset = make_ialltoall_functionset();
  GuidelineBook book;
  book.mark_dominated("linear", "prior-report:G2");
  auto r = drive_pruned(*fset, book, [](int f) { return 1.0 + f; });
  // linear is index 0: convicted before the first measurement.
  for (int v : r.visited) EXPECT_NE(v, 0);
  EXPECT_EQ(r.winner, 1);  // dissemination is cheapest of the survivors
  auto policy = make_policy(PolicyKind::GuidelinePruned, *fset, &book);
  (void)policy->first();
  ASSERT_EQ(policy->eliminations().size(), 1u);
  EXPECT_EQ(policy->eliminations()[0].guideline, "prior-report:G2");
  EXPECT_DOUBLE_EQ(policy->eliminations()[0].bound, 0.0);  // pre-marked
}

TEST(GuidelinePruned, NeverPrunesTheLastSurvivor) {
  auto fset = make_ialltoall_functionset();
  GuidelineBook book;
  // Every member violates this bound and all are pre-marked: the policy
  // must still deliver a winner.
  book.add_mockup("impossible", 1e-12);
  for (const auto& fn : fset->functions()) {
    book.mark_dominated(fn.name, "overzealous");
  }
  auto r = drive_pruned(*fset, book, [](int) { return 1.0; });
  EXPECT_GE(r.winner, 0);
  EXPECT_LT(r.winner, static_cast<int>(fset->size()));
}

TEST(GuidelinePruned, EmptyBookDegeneratesToBruteForce) {
  auto fset = synthetic_fset({{"a", {0, 1, 2}}, {"b", {0, 1}}});
  auto cost = [](const std::vector<int>& v) {
    return 1.0 + v[0] * 0.3 + v[1] * 0.1;
  };
  GuidelineBook empty;
  auto r = drive_pruned(*fset, empty,
                        [&](int f) { return cost(fset->function(f).attrs); });
  EXPECT_EQ(r.visited.size(), fset->size());
  EXPECT_EQ(r.winner, oracle_best(*fset, cost));
  auto policy = make_policy(PolicyKind::GuidelinePruned, *fset, &empty);
  (void)policy->first();
  EXPECT_TRUE(policy->eliminations().empty());
}

TEST(GuidelinePruned, PinnedWinnerDropsConstructorPrunes) {
  // A history-pinned run (force_winner) bypasses the policy, so any
  // pre-marked convictions adopted during construction must not survive
  // into the audit (or, downstream, the trace): pinned runs are
  // byte-identical with and without a guideline book.
  auto fset = make_ialltoall_functionset();
  auto book = std::make_shared<GuidelineBook>();
  book->mark_dominated("linear", "prior-report:G2");
  TuningOptions opts;
  opts.policy = PolicyKind::GuidelinePruned;
  opts.guidelines = book;
  SelectionState sel(fset, opts);
  EXPECT_FALSE(sel.eliminations().empty());  // adopted at construction
  sel.force_winner(2);
  EXPECT_TRUE(sel.decided());
  EXPECT_EQ(sel.winner(), 2);
  EXPECT_TRUE(sel.eliminations().empty());   // dropped by the pin
}

// ------------------------------------------------- built-in set shapes

TEST(FunctionSets, PaperCardinalities) {
  EXPECT_EQ(make_ibcast_functionset()->size(), 21u);     // 7 x 3 (paper)
  EXPECT_EQ(make_ialltoall_functionset()->size(), 3u);   // paper
  EXPECT_EQ(make_ialltoall_functionset(true)->size(), 6u);
  EXPECT_EQ(make_iallgather_functionset()->size(), 3u);
  EXPECT_EQ(make_ireduce_functionset()->size(), 3u);
}

TEST(FunctionSets, BlockingVariantsAreFlagged) {
  auto fs = make_ialltoall_functionset(true);
  int blocking = 0;
  for (const auto& f : fs->functions()) blocking += f.blocking;
  EXPECT_EQ(blocking, 3);
  EXPECT_GE(fs->find_by_name("blocking-pairwise"), 0);
}

TEST(FunctionSets, AttributeLookup) {
  auto fs = make_ibcast_functionset();
  EXPECT_EQ(fs->attributes().index_of("fanout"), 0);
  EXPECT_EQ(fs->attributes().index_of("segsize"), 1);
  EXPECT_EQ(fs->attributes().index_of("nope"), -1);
  const int idx = fs->find_by_attrs({kBcastBinomialAttr, 65536});
  ASSERT_GE(idx, 0);
  EXPECT_EQ(fs->function(idx).name, "binomial/seg64k");
}

// ------------------------------------------------------------ Filtering

TEST(Filtering, QuantileInterpolates) {
  std::vector<double> s{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(s, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(s, 0.5), 2.5);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(s, 1.5), std::invalid_argument);
}

TEST(Filtering, IqrRemovesPlantedOutlier) {
  std::vector<double> s{1.0, 1.02, 0.98, 1.01, 0.99, 1.03, 0.97, 9.0};
  auto kept = filtered_samples(s, FilterKind::Iqr);
  EXPECT_EQ(kept.size(), 7u);
  EXPECT_LT(robust_score(s, FilterKind::Iqr), 1.1);
  EXPECT_GT(robust_score(s, FilterKind::None), 1.9);
}

TEST(Filtering, TrimmedMeanDropsTails) {
  std::vector<double> s{0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 100.0};
  EXPECT_DOUBLE_EQ(robust_score(s, FilterKind::TrimmedMean, 0.25), 1.0);
}

TEST(Filtering, SmallBatchesPassThrough) {
  std::vector<double> s{1.0, 50.0};
  EXPECT_EQ(filtered_samples(s, FilterKind::Iqr).size(), 2u);
  EXPECT_TRUE(std::isinf(robust_score({}, FilterKind::Iqr)));
}

TEST(Filtering, OutlierChangesUnfilteredDecision) {
  // The scenario behind the paper's 90%-correct figure: one OS-noise
  // outlier flips the unfiltered comparison, filtering saves it.
  std::vector<double> truly_fast{1.0, 1.0, 1.01, 0.99, 1.0, 1.0, 1.0, 8.0};
  std::vector<double> truly_slow{1.2, 1.21, 1.19, 1.2, 1.2, 1.21, 1.19, 1.2};
  EXPECT_GT(robust_score(truly_fast, FilterKind::None),
            robust_score(truly_slow, FilterKind::None));  // wrong order
  EXPECT_LT(robust_score(truly_fast, FilterKind::Iqr),
            robust_score(truly_slow, FilterKind::Iqr));   // corrected
}
