# Empty dependencies file for bench_fig7_progress_algo.
# This may be replaced when dependencies are built.
