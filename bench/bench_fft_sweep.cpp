// §IV-B summary statistic: across the FFT test sweep, in what fraction of
// the cases does ADCL beat (or match) the LibNBC version?
//
// Paper: ADCL reduced execution time vs LibNBC in 74% of 393 tests, with
// most of the rest on par (the few LibNBC wins happen where its fixed
// linear algorithm is already optimal and ADCL pays only learning costs).

#include "fft_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::bench;

int main(int argc, char** argv) {
  Driver drv("fft-sweep", argc, argv);
  harness::banner("3-D FFT sweep: ADCL vs LibNBC across scenarios");
  adcl::TuningOptions tuning;
  tuning.tests_per_function = 2;
  const int iters = drv.full() ? 25 : 15;

  struct Case {
    net::Platform platform;
    int nprocs;
    int grid_n;
  };
  // Scales chosen inside the paper's evaluation range (160..1024 procs,
  // scaled to the simulator): at toy scales the linear algorithm LibNBC
  // is pinned to is often already optimal and there is nothing to win.
  std::vector<Case> cases = {
      {net::whale(), 128, 1024},
      {net::whale(), 160, 1280},
      {net::crill(), 96, 768},
      {net::bluegene_p(), 128, 1024},
  };
  if (drv.full()) {
    cases.push_back({net::crill(), 160, 1280});
    cases.push_back({net::crill(), 256, 2048});
    cases.push_back({net::bluegene_p(), 256, 2048});
  }

  // The paper ran 350 iterations per test, which amortizes the learning
  // phase; simulating 350 iterations per configuration is unnecessary in
  // a noise-free simulator: the post-decision rate is steady, so the
  // 350-iteration total is learning_total + rate * (350 - learning_iters),
  // computed exactly from the measured run.
  constexpr int kPaperIters = 350;
  harness::Table t({"platform", "np", "N", "pattern", "LibNBC[s]", "ADCL[s]",
                    "ratio", "ratio@350it", "result"});
  int total = 0, wins = 0, par = 0;

  // Flatten to one pool task per (case, pattern, backend): every FFT run
  // owns its engine, so the whole sweep shards across cores and the rows
  // below aggregate in submission order.
  struct Unit {
    const Case* c;
    fft::Pattern pattern;
    fft::Backend backend;
  };
  std::vector<Unit> units;
  for (const Case& c : cases) {
    for (fft::Pattern p : kAllPatterns) {
      units.push_back({&c, p, fft::Backend::LibNBC});
      units.push_back({&c, p, fft::Backend::Adcl});
    }
  }
  std::vector<FftRun> results(units.size());
  {
    auto timer = drv.timer();
    drv.pool().run_indexed(units.size(), [&](std::size_t i) {
      const Unit& u = units[i];
      const adcl::TuningOptions opts =
          u.backend == fft::Backend::Adcl ? tuning : adcl::TuningOptions{};
      results[i] = run_fft(u.c->platform, u.c->nprocs, u.c->grid_n,
                           u.pattern, u.backend, iters, opts);
    });
  }

  std::size_t unit = 0;
  for (const Case& c : cases) {
    for (fft::Pattern p : kAllPatterns) {
      const FftRun nbc = results[unit++];
      const FftRun ad = results[unit++];
      const double ratio = ad.total_time / nbc.total_time;
      const double nbc_rate = nbc.total_time / iters;
      const double ad_learning = ad.total_time - ad.post_learning_time;
      const int ad_learn_iters = iters - ad.post_learning_iters;
      const double ad_rate =
          ad.post_learning_time / std::max(1, ad.post_learning_iters);
      const double nbc350 = nbc_rate * kPaperIters;
      const double ad350 =
          ad_learning + ad_rate * (kPaperIters - ad_learn_iters);
      const double ratio350 = ad350 / nbc350;
      ++total;
      std::string result;
      if (ratio350 < 0.995) {
        ++wins;
        result = "ADCL faster";
      } else if (ratio350 <= 1.02) {
        ++par;
        result = "on par";
      } else {
        result = "LibNBC faster";
      }
      t.add_row({c.platform.name, std::to_string(c.nprocs),
                 std::to_string(c.grid_n), fft::pattern_name(p),
                 harness::Table::num(nbc.total_time),
                 harness::Table::num(ad.total_time),
                 harness::Table::num(ratio, 3),
                 harness::Table::num(ratio350, 3), result});
    }
  }
  t.print();
  std::cout << "\nAt the paper's 350-iteration amortization: ADCL faster in "
            << wins << "/" << total << " = "
            << harness::Table::num(100.0 * wins / total, 1)
            << "% of cases; on par in " << par << "/" << total
            << " (paper: faster in 74% of 393 tests, most others on par)\n";
  return 0;
}
