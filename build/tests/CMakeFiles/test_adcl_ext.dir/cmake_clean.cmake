file(REMOVE_RECURSE
  "CMakeFiles/test_adcl_ext.dir/test_adcl_ext.cpp.o"
  "CMakeFiles/test_adcl_ext.dir/test_adcl_ext.cpp.o.d"
  "test_adcl_ext"
  "test_adcl_ext.pdb"
  "test_adcl_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adcl_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
