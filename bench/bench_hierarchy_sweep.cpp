// Hierarchy sweep: multi-rail scatter mappings and two-level collectives
// on the crill preset (16 nodes x 48 cores, two IB HCAs per node).
//
// Part 1 ("+topo=rails2") — Iscatter mapping comparison at np 96 (two
// nodes), CommBench-style: at small sizes per-message overheads dominate
// and the mappings tie; at large sizes the fan mapping chokes on rail 0
// while rail round-robin and striping spread the serialization across
// both HCAs.
//
// Part 2 ("+topo=hier") — flat vs two-level Ibcast and Iallreduce fixed
// runs on the extended function-sets: the two-level variants send the
// same number of payload messages but cross the inter-node link once per
// node instead of scattering crossings through every tree round, so they
// win at large sizes (the analyzer's G7 material).
//
// Part 3 — ADCL on the extended sets: the tuned winner switches from a
// flat member at small sizes to the striped / two-level member at large
// sizes.  Run-time selection needs fibers, so this part always runs in
// fiber mode regardless of --exec; parts 1-2 honour the flag and its
// byte-identical fiber/machine contract.

#include "bench_util.hpp"
#include "net/platform.hpp"

using namespace nbctune;
using namespace nbctune::harness;

namespace {

MicroScenario base_scenario(const bench::Driver& drv) {
  MicroScenario s;
  s.platform = net::crill();
  s.nprocs = 96;  // two 48-core nodes
  s.compute_per_iter = 2e-3;
  s.progress_calls = 5;
  s.iterations = drv.full() ? 16 : 6;
  s.noise_scale = 0.0;  // systematic comparison: noise off
  drv.configure(s);
  return s;
}

void print_adcl(const std::string& title, MicroScenario s) {
  // Selection blocks on the decision allreduce and needs fibers; the
  // stdout stays byte-identical across --exec values because this path
  // never honours the flag.
  s.exec = ExecMode::Fiber;
  adcl::TuningOptions opts;
  opts.policy = adcl::PolicyKind::BruteForce;
  opts.tests_per_function = 2;
  const RunOutcome o = run_adcl(s, opts);
  std::cout << title << ": winner=" << o.impl << " decided@iter="
            << o.decision_iteration
            << " loop_time=" << Table::num(o.loop_time) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Driver drv("hierarchy", argc, argv);

  // --- Part 1: Iscatter rail mappings --------------------------------
  for (std::size_t bytes :
       {std::size_t{4096}, std::size_t{65536}, std::size_t{1048576}}) {
    MicroScenario s = base_scenario(drv);
    s.op = OpKind::Iscatter;
    s.bytes = bytes;
    s.topo_tag = "rails2";
    bench::print_fixed_comparison(
        "Hierarchy: Iscatter rail mappings — crill, 96 procs, " +
            std::to_string(bytes) + " B per block",
        s, drv.pool());
  }

  // --- Part 2: flat vs two-level -------------------------------------
  for (std::size_t bytes : {std::size_t{16384}, std::size_t{1048576}}) {
    MicroScenario s = base_scenario(drv);
    s.op = OpKind::Ibcast;
    s.bytes = bytes;
    s.include_hierarchical = true;
    s.topo_tag = "hier";
    bench::print_fixed_comparison(
        "Hierarchy: Ibcast flat vs two-level — crill, 96 procs, " +
            std::to_string(bytes) + " B",
        s, drv.pool());
  }
  for (std::size_t bytes : {std::size_t{16384}, std::size_t{1048576}}) {
    MicroScenario s = base_scenario(drv);
    s.op = OpKind::Iallreduce;
    s.bytes = bytes;
    s.include_hierarchical = true;
    s.topo_tag = "hier";
    bench::print_fixed_comparison(
        "Hierarchy: Iallreduce flat vs two-level — crill, 96 procs, " +
            std::to_string(bytes) + " B",
        s, drv.pool());
  }

  // --- Part 3: the tuner switches with the message size --------------
  harness::banner("Hierarchy: ADCL winner switch (brute-force)");
  for (std::size_t bytes : {std::size_t{4096}, std::size_t{1048576}}) {
    MicroScenario s = base_scenario(drv);
    s.op = OpKind::Iscatter;
    s.bytes = bytes;
    s.topo_tag = "rails2";
    s.iterations = drv.full() ? 24 : 14;  // learning phase + steady state
    print_adcl("iscatter " + std::to_string(bytes) + "B", s);
  }
  for (std::size_t bytes : {std::size_t{16384}, std::size_t{1048576}}) {
    MicroScenario s = base_scenario(drv);
    s.op = OpKind::Iallreduce;
    s.bytes = bytes;
    s.include_hierarchical = true;
    s.topo_tag = "hier";
    s.iterations = drv.full() ? 24 : 14;
    print_adcl("iallreduce " + std::to_string(bytes) + "B", s);
  }
  return 0;
}
